package anna

// Transaction participant: each storage node validates and locks the
// subset of a transaction's write set it owns (prepare), then installs
// or discards it on the coordinator's decision. Prepared items live in
// a side table, never in the tiered store, so no reader under any
// consistency mode can observe an uncommitted write. A periodic sweep
// resolves transactions orphaned by a dead coordinator from the commit
// log in Anna itself: found on any log owner → commit (or abort, if a
// different attempt won), affirmatively absent everywhere → presumed
// abort, any log owner unreachable → stay in doubt and retry.

import (
	"sort"
	"time"

	"cloudburst/internal/core"
	"cloudburst/internal/lattice"
	"cloudburst/internal/simnet"
	"cloudburst/internal/txn"
	"cloudburst/internal/vtime"
)

// preparedTxn is one in-doubt transaction on this node.
type preparedTxn struct {
	txnID string
	reqID string
	clock int64
	node  uint64
	items []core.TxnWrite
	at    vtime.Time
}

func (n *Node) handleTxnPrepare(req *simnet.Request, b txn.PrepareReq) {
	n.ops++
	if _, ok := n.prepared[b.TxnID]; ok {
		// Duplicate prepare (coordinator retry): the earlier vote stands.
		n.k.Sleep(n.cfg.PutServiceTime)
		req.Reply(txn.PrepareResp{TxnID: b.TxnID, Vote: true}, 16)
		return
	}
	// Validate every item first, then lock atomically — a conflict votes
	// no and takes nothing, so there is no blocking and no distributed
	// deadlock, only aborts.
	reason := ""
	payloadBytes := 0
	for _, it := range b.Items {
		payloadBytes += len(it.Payload)
		if holder, locked := n.locks[it.Key]; locked && holder != b.TxnID {
			reason = "key " + it.Key + " prepared by another txn"
			break
		}
		if it.Blind {
			continue
		}
		e, _ := n.st.get(it.Key, n.k.Now())
		switch {
		case e == nil:
			if it.BasePresent {
				reason = "key " + it.Key + " disappeared since read"
			}
		case !it.BasePresent:
			reason = "key " + it.Key + " appeared since read"
		default:
			l, isLWW := e.lat.(*lattice.LWW)
			if !isLWW {
				reason = "key " + it.Key + " holds " + e.lat.TypeName()
			} else if l.TS.Clock != it.BaseClock || l.TS.Node != it.BaseNode {
				reason = "key " + it.Key + " changed since read"
			}
		}
		if reason != "" {
			break
		}
	}
	if reason != "" {
		// Presumed abort: a no vote keeps no state.
		n.k.Sleep(n.cfg.PutServiceTime)
		req.Reply(txn.PrepareResp{TxnID: b.TxnID, Vote: false, Reason: reason}, 16+len(reason))
		return
	}
	for _, it := range b.Items {
		if !it.ReadOnly {
			n.locks[it.Key] = b.TxnID
		}
	}
	n.prepared[b.TxnID] = &preparedTxn{
		txnID: b.TxnID, reqID: b.ReqID, clock: b.Clock, node: b.Node,
		items: b.Items, at: n.k.Now(),
	}
	n.k.Sleep(n.serviceTime(n.cfg.PutServiceTime, false, payloadBytes))
	req.Reply(txn.PrepareResp{TxnID: b.TxnID, Vote: true}, 16)
	n.cfg.Hooks.Fire(txn.HookPostPrepareAck, string(n.id))
}

func (n *Node) handleTxnDecision(_ simnet.Message, b txn.DecisionMsg) {
	p, ok := n.prepared[b.TxnID]
	if !ok {
		return // never prepared here, or already resolved
	}
	n.resolveTxn(p, b.Commit)
}

// resolveTxn finishes a prepared transaction: release its locks, drop
// the prepare record, and on commit install every written item into
// the store at the transaction's timestamp (dirty for replica gossip
// and cache push, like any put).
func (n *Node) resolveTxn(p *preparedTxn, commit bool) {
	delete(n.prepared, p.txnID)
	for _, it := range p.items {
		if !it.ReadOnly && n.locks[it.Key] == p.txnID {
			delete(n.locks, it.Key)
		}
	}
	if !commit {
		n.k.Sleep(n.cfg.PutServiceTime)
		return
	}
	ts := lattice.Timestamp{Clock: p.clock, Node: p.node}
	var svc time.Duration
	for _, it := range p.items {
		if it.ReadOnly {
			continue
		}
		e, fromDisk := n.st.merge(it.Key, lattice.NewLWW(ts, it.Payload), n.k.Now())
		e.dirtyRepl, e.dirtyPush = true, true
		svc += n.serviceTime(n.cfg.PutServiceTime, fromDisk, e.size)
	}
	n.k.Sleep(svc)
}

// txnSweepTick resolves in-doubt transactions older than the prepare
// TTL from the commit log.
func (n *Node) txnSweepTick() {
	if len(n.prepared) == 0 {
		return
	}
	now := n.k.Now()
	ids := make([]string, 0, len(n.prepared))
	for id := range n.prepared {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		p, ok := n.prepared[id]
		if !ok || now.Sub(p.at) < n.cfg.TxnPrepareTTL {
			continue
		}
		n.resolveInDoubt(p)
	}
}

// resolveInDoubt consults every owner of the transaction's commit-log
// key. Presence of a commit record is the commit decision (for the
// recorded attempt; a record naming a different attempt means ours
// lost and is a ghost to discard). Absence everywhere is presumed
// abort. Unreachable owners leave the transaction in doubt for the
// next sweep.
func (n *Node) resolveInDoubt(p *preparedTxn) {
	logKey := core.TxnLogKey(p.reqID)
	allMissing := true
	for _, o := range n.ring.OwnersFor(logKey) {
		var lat lattice.Lattice
		found := false
		if o == n.id {
			if e, _ := n.st.get(logKey, n.k.Now()); e != nil {
				lat, found = e.lat, true
			}
		} else {
			resp, err := n.ep.Call(o, GetReq{Key: logKey}, 24+len(logKey), 200*time.Millisecond)
			if err != nil {
				allMissing = false // unreachable: cannot presume abort yet
				continue
			}
			gr := resp.(GetResp)
			if gr.Found {
				lat, found = gr.Lat, true
			}
		}
		if !found {
			continue
		}
		l, ok := lat.(*lattice.LWW)
		if !ok {
			continue
		}
		v, err := n.cfg.Codec.Decode(l.Value)
		if err != nil {
			continue
		}
		rec, rerr := txn.AsRecord(v)
		if rerr != nil {
			continue
		}
		n.resolveTxn(p, rec.TxnID == p.txnID)
		return
	}
	if allMissing {
		n.resolveTxn(p, false)
	}
}

// PreparedTxns reports the node's in-doubt transaction count (chaos
// assertions: zero after heal).
func (n *Node) PreparedTxns() int { return len(n.prepared) }

// PreparedTxns sums in-doubt transactions across all storage nodes.
func (kv *KVS) PreparedTxns() int {
	total := 0
	for _, n := range kv.nodes {
		total += n.PreparedTxns()
	}
	return total
}
