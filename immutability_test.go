package cloudburst

// End-to-end enforcement of the data plane's payload-immutability
// convention: with the lattice payload guard armed, a workload that
// writes, reads, caches, and write-backs through every consistency mode
// must never mutate a capsule's bytes in place — sharing (not copying)
// payload slices across cache, KVS, and executor is only sound if every
// writer allocates a fresh buffer.

import (
	"fmt"
	"testing"

	"cloudburst/internal/lattice"
)

func TestPayloadImmutabilityAllModes(t *testing.T) {
	modes := []Consistency{LWW, RepeatableRead, SingleKeyCausal, MultiKeyCausal, Causal}
	for _, mode := range modes {
		t.Run(mode.String(), func(t *testing.T) {
			lattice.GuardPayloads()
			cfg := DefaultConfig()
			cfg.Mode = mode
			c := testCluster(t, cfg)
			if err := c.RegisterFunction("rmw", func(ctx *Ctx, args []any) (any, error) {
				key := args[0].(string)
				cur, found, err := ctx.Get(key)
				if err != nil {
					return nil, err
				}
				var list []string
				if found {
					list = cur.([]string)
				}
				// Mutating through append is the realistic hazard: the
				// decoded slice must not share spare capacity with the
				// capsule's buffer.
				list = append(list, fmt.Sprintf("e%d", len(list)))
				if err := ctx.Put(key, list); err != nil {
					return nil, err
				}
				return len(list), nil
			}); err != nil {
				t.Fatal(err)
			}
			c.Run(func(cl *Client) {
				if err := cl.Put("blob", []byte("payload-bytes")); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 4; i++ {
					if _, err := cl.Invoke("rmw", []any{"list"}).Wait(); err != nil {
						t.Fatal(err)
					}
					if v, found, err := cl.Get("blob"); err != nil || !found || string(v.([]byte)) != "payload-bytes" {
						t.Fatalf("blob read = %v %v %v", v, found, err)
					}
				}
				if v, found, err := cl.Get("list"); err != nil || !found || len(v.([]string)) == 0 {
					t.Fatalf("list read = %v %v %v", v, found, err)
				}
			})
			if err := lattice.VerifyPayloads(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
