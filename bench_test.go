package cloudburst_test

// One benchmark per table and figure of the paper's evaluation (§6).
// Each iteration runs the experiment's CI-scale configuration end to end
// on the virtual-time kernel and reports the headline simulated metrics
// via b.ReportMetric (sim-ms medians, sim-req/s throughputs, anomaly
// counts). The ns/op numbers measure the harness itself — the real time
// it takes to simulate the experiment — while the custom metrics carry
// the reproduced results. cmd/cb-bench runs the same experiments with
// the paper's full parameters and prints the tables; EXPERIMENTS.md
// records paper-vs-measured for every row.

import (
	"fmt"
	"runtime/debug"
	"testing"

	cloudburst "cloudburst"
	"cloudburst/internal/bench"
	"cloudburst/internal/codec"
	"cloudburst/internal/core"
)

// reportRows exports each system's median/p99 as benchmark metrics.
func reportRows(b *testing.B, rows []bench.Summary) {
	b.Helper()
	for _, s := range rows {
		b.ReportMetric(s.Median, "ms_median:"+metricName(s.Name))
	}
}

// freeMem returns the heap to the OS after an experiment; the paper
// benches boot and tear down whole clusters, and a full -bench=. sweep
// must fit small machines.
func freeMem(b *testing.B) { b.Cleanup(debug.FreeOSMemory) }

func metricName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		case r == ' ', r == '(', r == ')', r == '+':
			// skip
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// BenchmarkFig1Composition reproduces Figure 1: two-function composition
// latency across Cloudburst, Dask, SAND, Lambda variants, and Step
// Functions.
func BenchmarkFig1Composition(b *testing.B) {
	freeMem(b)
	for i := 0; i < b.N; i++ {
		r := bench.RunFig1(bench.Fig1Quick())
		reportRows(b, r.Rows)
	}
}

// BenchmarkFig5DataLocality reproduces Figure 5: the 10-array sum across
// cache-hot/cold Cloudburst and Lambda over Redis/S3.
func BenchmarkFig5DataLocality(b *testing.B) {
	freeMem(b)
	for i := 0; i < b.N; i++ {
		r := bench.RunFig5(bench.Fig5Quick())
		for _, row := range r.Rows {
			b.ReportMetric(row.Summary.Median, "ms_median:"+metricName(row.Summary.Name))
			if row.KVSReadRTT > 0 {
				// Cold-read fan-out: KVS read round trips per request
				// (the grouped multi-get collapses 10 per-key gets to
				// one per storage node).
				b.ReportMetric(row.KVSReadRTT, "kvsrt/req:"+metricName(row.Summary.Name))
			}
		}
	}
}

// BenchmarkFig6Aggregation reproduces Figure 6: gossip vs gather
// distributed aggregation.
func BenchmarkFig6Aggregation(b *testing.B) {
	freeMem(b)
	for i := 0; i < b.N; i++ {
		r := bench.RunFig6(bench.Fig6Quick())
		reportRows(b, r.Rows)
	}
}

// BenchmarkFig7Autoscaling reproduces Figure 7: the load-spike/drain
// timeline with replica pinning and node scaling.
func BenchmarkFig7Autoscaling(b *testing.B) {
	freeMem(b)
	for i := 0; i < b.N; i++ {
		r := bench.RunFig7(bench.Fig7Quick())
		b.ReportMetric(r.PeakThroughput, "simreq/s_peak")
		b.ReportMetric(float64(r.IndexMedianB), "B_index_median")
		b.ReportMetric(float64(r.IndexP99B), "B_index_p99")
	}
}

// BenchmarkFig8Consistency reproduces Figure 8: per-depth DAG latency
// under the five consistency levels.
func BenchmarkFig8Consistency(b *testing.B) {
	freeMem(b)
	for i := 0; i < b.N; i++ {
		r := bench.RunFig8(bench.Fig8Quick())
		for _, row := range r.Rows {
			b.ReportMetric(row.Summary.Median, "ms_median:"+metricName(row.Summary.Name))
			b.ReportMetric(row.Summary.P99, "ms_p99:"+metricName(row.Summary.Name))
		}
	}
}

// BenchmarkTable2Anomalies reproduces Table 2: anomalies flagged per
// consistency level over LWW executions.
func BenchmarkTable2Anomalies(b *testing.B) {
	freeMem(b)
	for i := 0; i < b.N; i++ {
		r := bench.RunTable2(bench.Table2Quick())
		b.ReportMetric(float64(r.Report.SK), "anomalies_SK")
		b.ReportMetric(float64(r.Report.MK), "anomalies_MK")
		b.ReportMetric(float64(r.Report.DSC), "anomalies_DSC")
		b.ReportMetric(float64(r.Report.DSRR), "anomalies_DSRR")
	}
}

// BenchmarkFig9PredictionServing reproduces Figure 9: the three-stage
// model pipeline across systems.
func BenchmarkFig9PredictionServing(b *testing.B) {
	freeMem(b)
	for i := 0; i < b.N; i++ {
		r := bench.RunFig9(bench.Fig9Quick())
		reportRows(b, r.Rows)
	}
}

// BenchmarkFig10PredictionScaling reproduces Figure 10: pipeline
// latency/throughput as worker threads scale.
func BenchmarkFig10PredictionScaling(b *testing.B) {
	freeMem(b)
	for i := 0; i < b.N; i++ {
		r := bench.RunFig10(bench.Fig10Quick())
		for _, row := range r.Rows {
			b.ReportMetric(row.Throughput, "simreq/s_"+metricName(row.Summary.Name))
		}
	}
}

// BenchmarkFig10PerformanceUnderFailure reproduces the §4.5 experiment:
// steady closed-loop DAG load with one executor VM killed mid-run and
// restarted, reporting p50/p99 before/during/after recovery plus the
// recovery spike and re-execution count.
func BenchmarkFig10PerformanceUnderFailure(b *testing.B) {
	freeMem(b)
	for i := 0; i < b.N; i++ {
		r := bench.RunFig10Failure(bench.Fig10FailureQuick())
		b.ReportMetric(r.Pre.Median, "ms_p50:pre")
		b.ReportMetric(r.Pre.P99, "ms_p99:pre")
		b.ReportMetric(r.During.Median, "ms_p50:during")
		b.ReportMetric(r.During.P99, "ms_p99:during")
		b.ReportMetric(r.Post.Median, "ms_p50:post")
		b.ReportMetric(r.Post.P99, "ms_p99:post")
		b.ReportMetric(r.PeakBucketP99, "ms_p99:recoveryspike")
		b.ReportMetric(float64(r.Reexecutions), "reexecs")
		b.ReportMetric(float64(r.Failed), "failedreqs")
	}
}

// BenchmarkFig10Lifecycle runs the state-lifecycle experiment: the same
// crash under steady closed-loop load recovered three ways — cold
// restart (refault storm), warm restart (peer cache handoff), and a
// drained rolling upgrade — reporting each recovery spike and the
// cold/warm ratio.
func BenchmarkFig10Lifecycle(b *testing.B) {
	freeMem(b)
	for i := 0; i < b.N; i++ {
		r := bench.RunFig10Lifecycle(bench.Fig10LifecycleQuick())
		b.ReportMetric(r.Cold.Steady.P99, "ms_p99:steady")
		b.ReportMetric(r.Cold.SpikeP99, "ms_p99:coldspike")
		b.ReportMetric(r.Warm.SpikeP99, "ms_p99:warmspike")
		b.ReportMetric(r.SpikeRatio, "x_coldoverwarm")
		b.ReportMetric(r.Rolling.SpikeP99, "ms_p99:rollingpeak")
		b.ReportMetric(r.RollingPeakRatio, "x_rollingoversteady")
		b.ReportMetric(float64(r.Warm.WarmFilled), "warmfilledkeys")
		b.ReportMetric(float64(r.Cold.Failed+r.Warm.Failed+r.Rolling.Failed), "failedreqs")
	}
}

// BenchmarkFig11Retwis reproduces Figure 11: Retwis on Cloudburst
// LWW/causal vs serverful Redis, with anomaly rates.
func BenchmarkFig11Retwis(b *testing.B) {
	freeMem(b)
	for i := 0; i < b.N; i++ {
		r := bench.RunFig11(bench.Fig11Quick())
		for _, row := range r.Rows {
			b.ReportMetric(row.Summary.Median, "ms_median:"+metricName(row.Summary.Name))
			b.ReportMetric(row.AnomalyRate*100, "pct_anomaly:"+metricName(row.Summary.Name))
		}
	}
}

// BenchmarkFig12RetwisScaling reproduces Figure 12: Retwis throughput
// scaling in causal mode.
func BenchmarkFig12RetwisScaling(b *testing.B) {
	freeMem(b)
	for i := 0; i < b.N; i++ {
		r := bench.RunFig12(bench.Fig12Quick())
		for _, row := range r.Rows {
			b.ReportMetric(row.ThroughputKOp*1000, "simops/s_"+metricName(row.Summary.Name))
		}
	}
}

// BenchmarkFig13Saturation runs the open-loop saturation sweep: offered
// load × scheduler-group size, with the partitioned monitor on in the
// sharded arms. The knees are the headline — the sharded knee must hold
// a multiple of the single scheduler's.
func BenchmarkFig13Saturation(b *testing.B) {
	freeMem(b)
	for i := 0; i < b.N; i++ {
		cfg := bench.Fig13Quick()
		r := bench.RunFig13(cfg)
		base := cfg.SchedulerCounts[0]
		b.ReportMetric(r.Knees[base], "simreq/s_knee1")
		for _, n := range cfg.SchedulerCounts[1:] {
			b.ReportMetric(r.Knees[n], fmt.Sprintf("simreq/s_knee%d", n))
		}
		b.ReportMetric(r.KneeRatio, "x_knee_ratio")
	}
}

// BenchmarkFig15Txn runs the transactional-commit figure: the bank
// workload across all six consistency modes plus the kill/restart panel
// in Transactional mode. The headline metrics are the Txn row's commit
// latency and abort rate and the failure panel's sum drift (atomicity
// through a coordinator crash — must stay 0) and in-doubt count.
func BenchmarkFig15Txn(b *testing.B) {
	freeMem(b)
	for i := 0; i < b.N; i++ {
		r := bench.RunFig15(bench.Fig15Quick())
		for _, row := range r.Rows {
			b.ReportMetric(row.Summary.Median, "ms_median:"+metricName(row.Summary.Name))
			if row.Summary.Name == "Txn" {
				b.ReportMetric(row.AbortPct*100, "pct_abort:Txn")
				b.ReportMetric(float64(row.SumDrift), "sumdrift:Txn")
			}
		}
		b.ReportMetric(float64(r.Failure.SumDrift), "sumdrift:failure")
		b.ReportMetric(float64(r.Failure.InDoubt), "indoubt:failure")
		b.ReportMetric(r.Failure.During.P99, "ms_p99:during")
	}
}

// BenchmarkAblationLocalityScheduling quantifies the §4.3 design choice:
// locality-aware executor picks vs random placement on the Figure 5 hot
// workload.
// BenchmarkFig14Breakdown runs the critical-path breakdown figure: four
// traced scenarios (hot/cold reads, the fig10 recovery spike, a fig13
// past-knee cell) analyzed into per-category p99 shares. The reported
// metrics are the two gated attributions — both must stay ≥ 0.95 — and
// the knee's queue share (its diagnosis).
func BenchmarkFig14Breakdown(b *testing.B) {
	freeMem(b)
	for i := 0; i < b.N; i++ {
		r := bench.RunFig14(bench.Fig14Quick())
		for _, row := range r.Rows {
			switch row.Scenario {
			case "spike":
				b.ReportMetric(row.P99.Attributed(), "frac_attr_spike_p99")
			case "knee":
				b.ReportMetric(row.P99.Attributed(), "frac_attr_knee_p99")
				_, share := row.P99.Dominant()
				b.ReportMetric(share, "frac_queue_knee_p99")
			}
		}
	}
}

func BenchmarkAblationLocalityScheduling(b *testing.B) {
	freeMem(b)
	for i := 0; i < b.N; i++ {
		r := bench.RunAblationLocality(bench.AblationQuick())
		b.ReportMetric(r.Locality.Median, "ms_median:locality")
		b.ReportMetric(r.Random.Median, "ms_median:random")
	}
}

// BenchmarkAblationCaching quantifies the co-located cache itself:
// normal caches vs forced misses on every read.
func BenchmarkAblationCaching(b *testing.B) {
	freeMem(b)
	for i := 0; i < b.N; i++ {
		r := bench.RunAblationCaching(bench.AblationQuick())
		b.ReportMetric(r.Cached.Median, "ms_median:cached")
		b.ReportMetric(r.Uncached.Median, "ms_median:uncached")
	}
}

// BenchmarkSingleInvocation measures the end-to-end single-function hot
// path (client → scheduler → executor → client) per invocation.
func BenchmarkSingleInvocation(b *testing.B) {
	cfg := cloudburst.DefaultConfig()
	c := cloudburst.NewCluster(cfg)
	defer c.Close()
	if err := c.RegisterFunction("nop", func(ctx *cloudburst.Ctx, args []any) (any, error) { return 1, nil }); err != nil {
		b.Fatal(err)
	}
	c.Run(func(cl *cloudburst.Client) { cl.Sleep(3e9) })
	b.ResetTimer()
	c.Run(func(cl *cloudburst.Client) {
		for i := 0; i < b.N; i++ {
			if _, err := cl.Invoke("nop", nil).Wait(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDAGInvocation measures the two-function DAG hot path per
// request.
func BenchmarkDAGInvocation(b *testing.B) {
	cfg := cloudburst.DefaultConfig()
	c := cloudburst.NewCluster(cfg)
	defer c.Close()
	if err := c.RegisterFunction("a", func(ctx *cloudburst.Ctx, args []any) (any, error) { return 1, nil }); err != nil {
		b.Fatal(err)
	}
	if err := c.RegisterFunction("bb", func(ctx *cloudburst.Ctx, args []any) (any, error) { return 2, nil }); err != nil {
		b.Fatal(err)
	}
	if err := c.RegisterDAG(cloudburst.LinearDAG("ab", "a", "bb"), 1); err != nil {
		b.Fatal(err)
	}
	c.Run(func(cl *cloudburst.Client) { cl.Sleep(3e9) })
	b.ResetTimer()
	c.Run(func(cl *cloudburst.Client) {
		for i := 0; i < b.N; i++ {
			if _, err := cl.InvokeDAG("ab", nil).Wait(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCodecStructRoundTrip measures the reflection-free struct
// codec on the wire shapes the control plane publishes every metrics
// interval (an executor report and a scheduler report). Each b.N
// iteration performs 1000 encode+decode round trips of both so the
// -benchtime=1x rows bench.sh records carry a stable ns/op for the perf
// gate; allocs/op is the authoritative signal (the gob fallback this
// replaced cost hundreds of allocations per round trip).
func BenchmarkCodecStructRoundTrip(b *testing.B) {
	em := core.ExecutorMetrics{
		Thread: "exec-vm0-1", VM: "vm0", Utilization: 0.73,
		Pinned: []string{"rt-timeline", "rt-post"}, Completed: 912,
		AvgLatencyS: 0.041, ReportedAtS: 12.5,
	}
	sm := core.SchedulerMetrics{
		Scheduler:   "sched-0",
		DAGCalls:    map[string]int64{"rt": 4096, "pred": 128},
		FnCalls:     map[string]int64{"rt-timeline": 3686, "rt-post": 410, "done/rt": 4095},
		ReportedAtS: 12.5,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 1000; j++ {
			if got := codec.MustDecode(codec.MustEncode(em)).(core.ExecutorMetrics); got.Completed != em.Completed {
				b.Fatal("executor metrics round trip corrupted")
			}
			if got := codec.MustDecode(codec.MustEncode(sm)).(core.SchedulerMetrics); got.FnCalls["rt-timeline"] != 3686 {
				b.Fatal("scheduler metrics round trip corrupted")
			}
		}
	}
}
