// Predserve runs the §6.3.1 prediction-serving pipeline: a three-stage
// DAG (resize → model → combine) over an 8MB model stored in Anna. The
// scheduler's locality policy keeps routing the model stage to executors
// whose co-located cache already holds the weights, so steady-state
// latency approaches the pure-compute floor.
package main

import (
	"fmt"
	"log"
	"time"

	cloudburst "cloudburst"
	"cloudburst/internal/workload"
)

func main() {
	cfg := cloudburst.DefaultConfig()
	cfg.VMs = 1 // 3 workers, as in the paper's Figure 9 setup
	cb := cloudburst.NewCluster(cfg)
	defer cb.Close()

	p := workload.DefaultPredServe()
	p.Preload(cb) // store the 8MB weights blob in Anna
	if err := p.Register(cb, 1); err != nil {
		log.Fatal(err)
	}

	cb.Run(func(cl *cloudburst.Client) {
		cl.Timeout = time.Minute
		cl.Sleep(3 * time.Second)

		fmt.Printf("pipeline compute floor: %v (resize %v + model %v + combine %v)\n",
			p.ComputeTotal(), p.ResizeTime, p.ModelTime, p.CombineTime)

		for i := 0; i < 5; i++ {
			start := cl.Now()
			class, err := p.Predict(cl)
			if err != nil {
				log.Fatal(err)
			}
			label := "?"
			if class == 1 {
				label = "tabby cat"
			}
			fmt.Printf("request %d: class=%d (%s) in %v virtual%s\n",
				i, class, label, (cl.Now() - start).Round(time.Millisecond),
				coldNote(i))
		}
	})
}

func coldNote(i int) string {
	if i == 0 {
		return "  (first request pulls the 8MB model into the cache)"
	}
	return ""
}
