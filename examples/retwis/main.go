// Retwis runs the §6.3.2 Twitter clone on Cloudburst in causal mode and
// demonstrates the consistency story: conversational threads stay
// intact (a timeline never shows a reply without its original tweet
// being available), because the reply's write causally depends on the
// parent it was replying to and the cache's causal cut carries that
// dependency to every reader.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	cloudburst "cloudburst"
	"cloudburst/internal/workload"
)

func main() {
	cfg := cloudburst.DefaultConfig()
	cfg.Mode = cloudburst.Causal
	cfg.VMs = 3
	cfg.AnnaNodes = 2
	cb := cloudburst.NewCluster(cfg)
	defer cb.Close()

	r := workload.DefaultRetwis()
	r.Users = 200
	r.Tweets = 800
	if err := r.Register(cb); err != nil {
		log.Fatal(err)
	}
	g := r.Generate(rand.New(rand.NewSource(7)))
	r.Preload(cb, g)
	fmt.Printf("seeded %d users (%d follows each), %d tweets (half replies)\n",
		r.Users, r.Follows, r.Tweets)

	cb.Run(func(cl *cloudburst.Client) {
		cl.Timeout = time.Minute
		cl.Sleep(3 * time.Second)

		// Alice (user 1) replies to a seed tweet; Bob (a follower)
		// immediately reads his timeline.
		parent := g.PostIDs[3]
		out, err := cl.Invoke("rt-post", []any{1, "replying to an old classic", parent}).Wait()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("user 1 posted reply %v (parent %s)\n", out, parent)

		// Run the paper's request mix and report anomaly counts.
		rng := rand.New(rand.NewSource(99))
		timelines, anomalies, posts := 0, 0, 0
		for i := 0; i < 300; i++ {
			res, err := r.Request(cl, rng, g)
			if err != nil {
				log.Fatal(err)
			}
			if res == nil {
				posts++
				continue
			}
			timelines++
			anomalies += res.Anomalies
		}
		fmt.Printf("served %d timelines and %d posts; replies rendered without their original: %d\n",
			timelines, posts, anomalies)
		fmt.Println("(run the Figure 11 bench to compare against LWW mode, where the rate is >60%)")

		// Follower counts come from the same six-function API.
		n, err := cloudburst.As[int](cl.Invoke("rt-followers", []any{0}))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("user 0 has %v followers\n", n)
	})
}
