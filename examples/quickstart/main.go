// Quickstart mirrors Figure 2 of the paper: create a cluster, register a
// function, call it with a KVS reference, and use a future for an
// asynchronous invocation.
package main

import (
	"fmt"
	"log"

	cloudburst "cloudburst"
)

func main() {
	// Boot a small simulated deployment: 2 VMs × 3 executor threads, a
	// 3-node Anna KVS. Virtual time makes this instant and reproducible.
	cb := cloudburst.NewCluster(cloudburst.DefaultConfig())
	defer cb.Close()

	// def sqfun(x): return x * x
	// sq = cloud.register(sqfun, name='square')
	if err := cb.RegisterFunction("square", func(ctx *cloudburst.Ctx, args []any) (any, error) {
		x := args[0].(int)
		return x * x, nil
	}); err != nil {
		log.Fatal(err)
	}

	cb.Run(func(cloud *cloudburst.Client) {
		// cloud.put('key', 2)
		if err := cloud.Put("key", 2); err != nil {
			log.Fatal(err)
		}

		// reference = CloudburstReference('key'); print(sq(reference))
		out, err := cloud.Call("square", cloudburst.Ref("key"))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("result: %d\n", out) // result: 4

		// future = sq(3, store_in_kvs=True); print(future.get())
		future, err := cloud.CallAsync("square", 3)
		if err != nil {
			log.Fatal(err)
		}
		out, err = future.Get()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("result: %d\n", out) // result: 9
	})
}
