// Quickstart mirrors Figure 2 of the paper: create a cluster, register a
// function, invoke it with a KVS reference, and use futures — direct
// push-based and KVS-stored — for asynchronous invocations.
package main

import (
	"fmt"
	"log"

	cloudburst "cloudburst"
)

func main() {
	// Boot a small simulated deployment: 2 VMs × 3 executor threads, a
	// 3-node Anna KVS. Virtual time makes this instant and reproducible.
	cb := cloudburst.NewCluster(cloudburst.DefaultConfig())
	defer cb.Close()

	// def sqfun(x): return x * x
	// sq = cloud.register(sqfun, name='square')
	if err := cb.RegisterFunction("square", func(ctx *cloudburst.Ctx, args []any) (any, error) {
		x := args[0].(int)
		return x * x, nil
	}); err != nil {
		log.Fatal(err)
	}

	cb.Run(func(cloud *cloudburst.Client) {
		// cloud.put('key', 2)
		if err := cloud.Put("key", 2); err != nil {
			log.Fatal(err)
		}

		// reference = CloudburstReference('key'); print(sq(reference))
		out, err := cloudburst.As[int](cloud.Invoke("square", []any{cloudburst.Ref("key")}))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("result: %d\n", out) // result: 4

		// future = sq(3, store_in_kvs=True); print(future.get())
		future := cloud.Invoke("square", []any{3}, cloudburst.WithStoreInKVS())
		v, err := future.Wait()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("result: %d\n", v) // result: 9

		// Fan out a batch of invocations over one endpoint and fan the
		// results back in.
		invs := make([]cloudburst.Invocation, 4)
		for i := range invs {
			invs[i] = cloudburst.Invocation{Function: "square", Args: []any{i}}
		}
		vals, err := cloudburst.All(cloud.Batch(invs)...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("batch: %v\n", vals) // batch: [0 1 4 9]
	})
}
