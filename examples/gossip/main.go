// Gossip runs the §6.1.3 distributed-aggregation workload: ten function
// invocations coordinate with Cloudburst's direct communication API
// (Table 1 send/recv) to compute an average with Kempe et al.'s
// push-sum protocol — the kind of fine-grained distributed algorithm
// that is infeasible on communication-less FaaS platforms.
package main

import (
	"fmt"
	"log"
	"time"

	cloudburst "cloudburst"
	"cloudburst/internal/workload"
)

func main() {
	cfg := cloudburst.DefaultConfig()
	cfg.VMs = 4 // 12 executor threads, as in the paper's setup
	cb := cloudburst.NewCluster(cfg)
	defer cb.Close()

	g := workload.DefaultGossip()
	if err := g.Register(cb); err != nil {
		log.Fatal(err)
	}

	cb.Run(func(cl *cloudburst.Client) {
		cl.Timeout = 2 * time.Minute
		cl.Sleep(3 * time.Second) // let the schedulers learn the fleet

		// The metric each running function reports (e.g. its CPU load).
		values := []float64{12, 19, 7, 31, 24, 16, 9, 28, 22, 14}
		mean := 0.0
		for _, v := range values {
			mean += v
		}
		mean /= float64(len(values))

		for round := 0; round < 3; round++ {
			latency, err := g.RunRound(cl, round, values)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("round %d: gossip converged to within 5%% of mean %.1f in %v (virtual)\n",
				round, mean, latency.Round(time.Millisecond))
		}

		// The gather workaround (fixed membership) for comparison.
		latency, err := g.RunGatherRound(cl, 99, values)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("gather: leader collected all %d metrics through the KVS in %v (virtual)\n",
			len(values), latency.Round(time.Millisecond))
	})
}
