package cloudburst

import (
	"strings"
	"testing"
	"time"
)

// txnCluster boots a Transactional-mode cluster.
func txnCluster(t *testing.T) *Cluster {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Mode = Transactional
	return testCluster(t, cfg)
}

// TestTxnCommitAtomicVisible: a transactional invocation's write set
// becomes visible as a unit after commit.
func TestTxnCommitAtomicVisible(t *testing.T) {
	c := txnCluster(t)
	if err := c.RegisterFunction("pair", func(ctx *Ctx, args []any) (any, error) {
		if err := ctx.Put("pair-a", args[0].(int)); err != nil {
			return nil, err
		}
		if err := ctx.Put("pair-b", args[0].(int)); err != nil {
			return nil, err
		}
		return "ok", nil
	}); err != nil {
		t.Fatal(err)
	}
	c.Run(func(cl *Client) {
		cl.Sleep(3 * time.Second)
		out, err := cl.Invoke("pair", []any{42}, WithTxn()).Wait()
		if err != nil {
			t.Fatalf("txn invoke: %v", err)
		}
		if out.(string) != "ok" {
			t.Fatalf("result = %v", out)
		}
		// The commit decision fans out asynchronously after the result;
		// give the one-way messages a moment.
		cl.Sleep(time.Second)
		a, foundA, _ := cl.Get("pair-a")
		b, foundB, _ := cl.Get("pair-b")
		if !foundA || !foundB {
			t.Fatalf("committed writes missing: a=%v b=%v", foundA, foundB)
		}
		if a.(int) != 42 || b.(int) != 42 {
			t.Fatalf("committed values: a=%v b=%v, want 42/42", a, b)
		}
	})
}

// TestTxnReadYourWrites: inside a transaction, Get sees the staged
// write before commit.
func TestTxnReadYourWrites(t *testing.T) {
	c := txnCluster(t)
	if err := c.RegisterFunction("ryw", func(ctx *Ctx, args []any) (any, error) {
		if err := ctx.Put("ryw-k", 7); err != nil {
			return nil, err
		}
		v, found, err := ctx.Get("ryw-k")
		if err != nil || !found {
			return nil, err
		}
		return v.(int), nil
	}); err != nil {
		t.Fatal(err)
	}
	c.Run(func(cl *Client) {
		cl.Sleep(3 * time.Second)
		out, err := cl.Invoke("ryw", nil, WithTxn()).Wait()
		if err != nil {
			t.Fatal(err)
		}
		if out.(int) != 7 {
			t.Fatalf("read-your-writes = %v, want 7", out)
		}
	})
}

// TestTxnRequiresTransactionalMode: WithTxn in any other mode is a
// clean error, not a silent downgrade.
func TestTxnRequiresTransactionalMode(t *testing.T) {
	c := testCluster(t, DefaultConfig()) // LWW
	registerArith(t, c)
	c.Run(func(cl *Client) {
		cl.Sleep(3 * time.Second)
		_, err := cl.Invoke("square", []any{3}, WithTxn()).Wait()
		if err == nil || !strings.Contains(err.Error(), "Transactional consistency mode") {
			t.Fatalf("err = %v, want mode-requirement error", err)
		}
	})
}

// TestTxnFunctionErrorDiscardsWrites: a function error inside a
// transaction leaves no trace of its staged writes.
func TestTxnFunctionErrorDiscardsWrites(t *testing.T) {
	c := txnCluster(t)
	if err := c.RegisterFunction("failput", func(ctx *Ctx, args []any) (any, error) {
		if err := ctx.Put("leak", 1); err != nil {
			return nil, err
		}
		return nil, &testErr{}
	}); err != nil {
		t.Fatal(err)
	}
	c.Run(func(cl *Client) {
		cl.Sleep(3 * time.Second)
		if _, err := cl.Invoke("failput", nil, WithTxn()).Wait(); err == nil {
			t.Fatal("expected function error")
		}
		cl.Sleep(time.Second)
		if _, found, _ := cl.Get("leak"); found {
			t.Fatal("staged write leaked from a failed transactional invocation")
		}
	})
}

type testErr struct{}

func (*testErr) Error() string { return "boom" }

// TestTxnOCCNoLostUpdates: concurrent transactional read-modify-writes
// of one counter either commit or abort; the committed count exactly
// matches the final value — OCC validation admits no lost updates.
func TestTxnOCCNoLostUpdates(t *testing.T) {
	c := txnCluster(t)
	if err := c.RegisterFunction("incr", func(ctx *Ctx, args []any) (any, error) {
		v, _, err := ctx.Get("ctr")
		if err != nil {
			return nil, err
		}
		n := 0
		if v != nil {
			n = v.(int)
		}
		ctx.Compute(5 * time.Millisecond)
		if err := ctx.Put("ctr", n+1); err != nil {
			return nil, err
		}
		return n + 1, nil
	}); err != nil {
		t.Fatal(err)
	}
	c.Run(func(cl *Client) {
		if err := cl.Put("ctr", 0); err != nil {
			t.Fatal(err)
		}
		cl.Sleep(3 * time.Second)
	})
	commits, aborts := 0, 0
	c.RunN(4, func(i int, cl *Client) {
		cl.Timeout = 30 * time.Second
		for r := 0; r < 5; r++ {
			_, err := cl.Invoke("incr", nil, WithTxn()).Wait()
			switch {
			case err == nil:
				commits++
			case strings.Contains(err.Error(), "txn: aborted"):
				aborts++
			default:
				t.Errorf("incr: %v", err)
			}
		}
	})
	c.Run(func(cl *Client) {
		cl.Sleep(time.Second)
		v, found, err := cl.Get("ctr")
		if err != nil || !found {
			t.Fatalf("ctr: %v %v", found, err)
		}
		if v.(int) != commits {
			t.Fatalf("ctr = %d, want %d (commits; %d aborts) — lost update", v, commits, aborts)
		}
	})
	if commits == 0 {
		t.Fatal("no transaction committed")
	}
}

// TestTxnDAGCommitAtSink: a transactional DAG buffers writes across
// functions and commits once at the sink.
func TestTxnDAGCommitAtSink(t *testing.T) {
	c := txnCluster(t)
	if err := c.RegisterFunction("stage1", func(ctx *Ctx, args []any) (any, error) {
		if err := ctx.Put("dag-a", 1); err != nil {
			return nil, err
		}
		return 1, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterFunction("stage2", func(ctx *Ctx, args []any) (any, error) {
		// The upstream write is staged, not committed; a transactional
		// read must still see it (the write set rides the trigger).
		v, found, err := ctx.Get("dag-a")
		if err != nil || !found {
			return nil, err
		}
		if err := ctx.Put("dag-b", v.(int)+1); err != nil {
			return nil, err
		}
		return v.(int) + 1, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterDAG(LinearDAG("txndag", "stage1", "stage2"), 1); err != nil {
		t.Fatal(err)
	}
	c.Run(func(cl *Client) {
		cl.Sleep(3 * time.Second)
		out, err := cl.InvokeDAG("txndag", nil, WithTxn()).Wait()
		if err != nil {
			t.Fatalf("txn dag: %v", err)
		}
		if out.(int) != 2 {
			t.Fatalf("sink result = %v, want 2", out)
		}
		cl.Sleep(time.Second)
		a, foundA, _ := cl.Get("dag-a")
		b, foundB, _ := cl.Get("dag-b")
		if !foundA || !foundB || a.(int) != 1 || b.(int) != 2 {
			t.Fatalf("dag writes: a=%v(%v) b=%v(%v), want 1/2", a, foundA, b, foundB)
		}
	})
}

// TestShadowSingleSurvivesSchedulerDeath is the §4.5 gap this PR
// closes for single-function requests: the acking scheduler shard dies
// mid-single together with the executing VM, and the rendezvous-hashed
// peer shard adopts and re-executes the request.
func TestShadowSingleSurvivesSchedulerDeath(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Schedulers = 2
	cfg.ShadowSingles = true
	cfg.VMs = 3
	c := testCluster(t, cfg)
	if err := c.RegisterFunction("slowmid", func(ctx *Ctx, args []any) (any, error) {
		ctx.Hook("test/mid-single")
		ctx.Compute(2 * time.Second)
		return 1, nil
	}); err != nil {
		t.Fatal(err)
	}
	in := c.Internal()
	// The executing VM dies the moment the function starts: the first
	// execution can never deliver a result.
	in.Hooks().Arm("test/mid-single", func(vm string) bool {
		in.KillVM(vm)
		return true
	})
	c.Run(func(cl *Client) {
		cl.Sleep(3 * time.Second)
		cl.Timeout = 2 * time.Minute
		fut := cl.Invoke("slowmid", nil)
		cl.Sleep(500 * time.Millisecond)

		// The owner shard tracked the single; its peer holds the shadow.
		// Kill the owner: only the peer's adoption can finish the request.
		scheds := in.Schedulers()
		ownerIdx := -1
		for i, s := range scheds {
			if s.ShadowedSingles() == 0 {
				ownerIdx = i
			}
		}
		if ownerIdx < 0 {
			t.Fatal("no scheduler tracked the single / no shadow registered")
		}
		owner := scheds[ownerIdx]
		peer := scheds[1-ownerIdx]
		in.Net.SetDown(owner.ID(), true)

		out, err := fut.Wait()
		if err != nil {
			t.Fatalf("single lost after scheduler-shard death: %v", err)
		}
		if out.(int) != 1 {
			t.Fatalf("result = %v", out)
		}
		if peer.ShadowAdoptions() == 0 {
			t.Fatal("peer shard adopted nothing — result arrived some other way")
		}
	})
}
