package cloudburst

import (
	"fmt"
	"time"

	"cloudburst/internal/vtime"
)

// Future is the handle to an in-flight invocation (CloudburstFuture in
// Figure 2). Futures are push-based: executors deliver core.Result
// messages to the issuing client's endpoint, which demultiplexes them
// onto futures by request ID — no KVS polling unless the invocation
// asked for WithStoreInKVS, in which case the future resolves by
// reading Key once the completion notice arrives.
//
// A Future must be used from the goroutine that owns its Client.
type Future struct {
	cl    *Client
	reqID string
	// Key is the KVS key the result is persisted under when the
	// invocation was made with WithStoreInKVS; any client can Get it.
	Key string

	store    bool
	timeout  time.Duration // 0 → the client's Timeout at wait time
	notified bool          // completion notice arrived; value readable under Key
	done     bool
	val      any
	err      error
	hops     int

	// resend carries the original wire request so Wait can re-route it
	// to another scheduler shard after a deadline miss: a request routed
	// to a shard killed pre-ack is tracked by no scheduler, so nothing
	// §4.5 does recovers it — only the client can (§3.2's load-balancer
	// failover). rerouted caps the remnant at one re-route per request.
	resend     any
	resendSize int
	rerouted   bool
}

// complete resolves the future and stops tracking it; later duplicate
// results find no pending entry and are dropped.
func (f *Future) complete(v any, err error) {
	f.val, f.err, f.done = v, err, true
	delete(f.cl.pending, f.reqID)
}

// fail resolves the future with an error.
func (f *Future) fail(err error) { f.complete(nil, err) }

func (f *Future) waitTimeout() time.Duration {
	if f.timeout > 0 {
		return f.timeout
	}
	return f.cl.Timeout
}

func (f *Future) timeoutErr() error {
	return fmt.Errorf("%w (request %s)", ErrTimedOut, f.reqID)
}

// Wait blocks (in virtual time) until the future completes and returns
// its value. On timeout the future stays pending: the result can still
// arrive, and a later Wait or TryGet picks it up.
func (f *Future) Wait() (any, error) {
	cl := f.cl
	budget := f.waitTimeout()
	deadline := cl.k.Now().Add(budget)
	// With a sharded scheduler group, a silent request is re-routed to
	// the next-ranked shard at half budget (once per request): the
	// primary shard may have died before acking, in which case no
	// scheduler tracks the request and only the client can recover it.
	// Single-scheduler clusters never arm this, keeping their schedules
	// byte-identical.
	rerouteArmed := f.resend != nil && !f.rerouted && cl.c.in.SchedulerCount() > 1
	var rerouteAt vtime.Time
	if rerouteArmed {
		rerouteAt = cl.k.Now().Add(budget / 2)
	}
	for {
		cl.drain()
		if f.done {
			return f.val, f.err
		}
		// Deadline check before any further blocking, so a future whose
		// timeout already expired fails immediately instead of paying
		// one more poll cycle.
		remaining := deadline.Sub(cl.k.Now())
		if remaining <= 0 {
			return nil, f.timeoutErr()
		}
		if rerouteArmed && !f.notified && rerouteAt.Sub(cl.k.Now()) <= 0 {
			cl.spans.Reissue(f.reqID, cl.k.Now())
			cl.ep.Send(cl.c.in.RouteScheduler(f.reqID, 1), f.resend, f.resendSize)
			f.rerouted = true
			rerouteArmed = false
		}
		if f.store && f.notified {
			// The result was persisted rather than carried inline; the
			// cache's write-back to Anna is asynchronous, so poll the
			// key until it lands. Read errors are returned without
			// resolving the future: a storage node can be transiently
			// unreachable, and a later Wait must be able to succeed.
			v, found, err := cl.Get(f.Key)
			if err != nil {
				return nil, err
			}
			if found {
				f.complete(v, nil)
				return f.val, f.err
			}
			if remaining = deadline.Sub(cl.k.Now()); remaining <= 0 {
				return nil, f.timeoutErr()
			}
			d := 2 * time.Millisecond
			if remaining < d {
				d = remaining
			}
			cl.k.Sleep(d)
			continue
		}
		wait := remaining
		if rerouteArmed {
			// Wake at the re-route instant even if no message arrives.
			if d := rerouteAt.Sub(cl.k.Now()); d < wait {
				wait = d
			}
		}
		if m, ok := cl.ep.RecvTimeout(wait); ok {
			cl.demux(m)
		}
	}
}

// TryGet reports the result if the invocation has already completed,
// without waiting: messages already delivered to the endpoint are
// drained, and for a persisted result whose completion notice has
// arrived one KVS read is attempted. ok is false while the invocation
// is still in flight.
func (f *Future) TryGet() (val any, ok bool, err error) {
	f.cl.drain()
	if !f.done && f.store && f.notified {
		// Transient read errors leave the future unresolved, like Wait.
		if v, found, gerr := f.cl.Get(f.Key); gerr == nil && found {
			f.complete(v, nil)
		}
	}
	if !f.done {
		return nil, false, nil
	}
	return f.val, true, f.err
}

// Get blocks until the result is available.
//
// Deprecated: use Wait (or the typed As).
func (f *Future) Get() (any, error) { return f.Wait() }

// Hops reports the executor-transition count of the completed
// invocation (0 until completion; request it with WithHopCount).
func (f *Future) Hops() int { return f.hops }

// All waits for every future (fan-in) and returns their values in
// argument order. All futures are waited on even when one fails — a
// failing member does not strand its siblings' results — and the first
// error encountered is returned.
func All(futs ...*Future) ([]any, error) {
	out := make([]any, len(futs))
	var first error
	for i, f := range futs {
		v, err := f.Wait()
		if err != nil && first == nil {
			first = err
		}
		out[i] = v
	}
	return out, first
}

// As waits for the future and returns its value as T — the typed
// decode path:
//
//	n, err := cloudburst.As[int](cl.Invoke("square", []any{7}))
func As[T any](f *Future) (T, error) {
	var zero T
	v, err := f.Wait()
	if err != nil {
		return zero, err
	}
	if v == nil {
		return zero, nil
	}
	t, ok := v.(T)
	if !ok {
		return zero, fmt.Errorf("cloudburst: result is %T, not %T", v, zero)
	}
	return t, nil
}
