#!/usr/bin/env bash
# bench.sh — run the paper-figure benchmarks with -benchmem and write a
# machine-readable JSON report (default BENCH_1.json) so successive PRs
# can track the harness's perf trajectory alongside the simulated
# metrics (ms_median:*, simreq/s_*, pct_anomaly:* stay the reproduction
# results; ns/op, B/op, allocs/op measure the harness itself).
#
# With -benchtime=1x one iteration is one full figure, so each row's
# ns/op IS that figure's wall time at the recorded runner width. -w
# sets the parallel experiment-runner width (internal/parallel) for the
# run: figures fan independent simulation cells across that many OS
# threads, with byte-identical tables at every width. The effective
# width and the suite's total wall seconds land in the JSON header.
#
# Usage: scripts/bench.sh [-p bench-regex] [-o out.json] [-c count] [-w width]
# The seed baseline (scripts/seed_baseline.json), when present, is
# embedded under "baseline_seed" for direct before/after comparison.
set -euo pipefail

cd "$(dirname "$0")/.."

PATTERN='Fig|Table|Ablation|Codec'
OUT=BENCH_1.json
COUNT=1
WIDTH=""
while getopts "p:o:c:w:" opt; do
  case $opt in
    p) PATTERN=$OPTARG ;;
    o) OUT=$OPTARG ;;
    c) COUNT=$OPTARG ;;
    w) WIDTH=$OPTARG ;;
    *) echo "usage: $0 [-p bench-regex] [-o out.json] [-c count] [-w width]" >&2; exit 2 ;;
  esac
done
if [ -n "$WIDTH" ]; then
  export CLOUDBURST_PARALLEL="$WIDTH"
fi

# Effective runner width, mirroring internal/parallel.Width():
# CLOUDBURST_SERIAL=1 forces 1, CLOUDBURST_PARALLEL overrides, else
# GOMAXPROCS (the processor count).
if [ "${CLOUDBURST_SERIAL:-}" = "1" ]; then
  EFFECTIVE_WIDTH=1
elif [ -n "${CLOUDBURST_PARALLEL:-}" ]; then
  EFFECTIVE_WIDTH=$CLOUDBURST_PARALLEL
else
  EFFECTIVE_WIDTH=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
fi

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT
WALL_START=$(date +%s)
go test -run '^$' -bench "$PATTERN" -benchmem -benchtime=1x -count "$COUNT" . | tee "$RAW"
WALL_S=$(( $(date +%s) - WALL_START ))

awk -v go_version="$(go version | awk '{print $3}')" \
    -v runner_width="$EFFECTIVE_WIDTH" \
    -v wall_s="$WALL_S" \
    -v baseline_file="scripts/seed_baseline.json" '
function jsonesc(s) { gsub(/\\/, "\\\\", s); gsub(/"/, "\\\"", s); return s }
BEGIN { n = 0 }
/^Benchmark/ {
  name = $1
  sub(/-[0-9]+$/, "", name)  # strip GOMAXPROCS suffix
  iters = $2
  row = "    {\"name\": \"" jsonesc(name) "\", \"iterations\": " iters ", \"metrics\": {"
  first = 1
  for (i = 3; i + 1 <= NF; i += 2) {
    if (!first) row = row ", "
    row = row "\"" jsonesc($(i+1)) "\": " $i
    first = 0
  }
  row = row "}}"
  rows[n++] = row
}
END {
  print "{"
  print "  \"tool\": \"scripts/bench.sh\","
  print "  \"go\": \"" go_version "\","
  print "  \"runner_width\": " runner_width ","
  print "  \"suite_wall_s\": " wall_s ","
  if ((getline line < baseline_file) >= 0) {
    close(baseline_file)
    printf "  \"baseline_seed\": "
    cmd = "cat " baseline_file
    sep = ""
    while ((cmd | getline bl) > 0) { printf "%s%s", sep, bl; sep = "\n  " }
    close(cmd)
    print ","
  }
  print "  \"benchmarks\": ["
  for (i = 0; i < n; i++) print rows[i] (i < n-1 ? "," : "")
  print "  ]"
  print "}"
}' "$RAW" > "$OUT"

echo "wrote $OUT (runner width $EFFECTIVE_WIDTH, ${WALL_S}s wall)"
