#!/usr/bin/env bash
# perfgate.sh — the perf-regression tripwire (ROADMAP item, armed for
# Fig5 in PR 3, extended to Fig7/Fig11 in PR 4, to the struct-codec
# microbench in PR 5, to the state-lifecycle experiment in PR 6, to
# the fig13 open-loop saturation sweep in PR 7, and to the fig15
# transactional-commit figure in PR 10; the current baseline is
# BENCH_10.json, recorded at runner width 1 so parallel CI runs can
# only beat its ns/op, never trip it spuriously. The BENCH_10 note
# explains each simulated figure that shifted in that re-record).
#
# Compares each gated benchmark's harness-cost metrics (ns/op,
# allocs/op) of a fresh bench report against the committed baseline and
# fails on a >25% regression of either. The bound comes from the noise
# observed across BENCH_1..BENCH_5 CI artifacts: allocs/op is
# deterministic to <1% (the simulation replays the same schedule), and
# min-of-N ns/op stays well inside 25% on same-class runners, so a 25%
# excursion means a real regression, not noise. Run the benches with
# -c 2 (or more); the gate takes the minimum across rows to shed
# one-off scheduling noise. allocs/op is the authoritative signal; if
# runner hardware ever drifts enough to trip the ns/op bound without a
# code change, re-record the baseline from a CI bench artifact (see
# ROADMAP). BenchmarkCodecStructRoundTrip runs 1000 round trips per
# iteration precisely so its -benchtime=1x ns/op stays inside the same
# bound.
#
# Usage: scripts/perfgate.sh <current.json> <baseline.json>
set -euo pipefail

CUR=${1:?usage: perfgate.sh <current.json> <baseline.json>}
BASE=${2:?usage: perfgate.sh <current.json> <baseline.json>}
BENCHES="BenchmarkFig5DataLocality BenchmarkFig7Autoscaling BenchmarkFig10Lifecycle BenchmarkFig11Retwis BenchmarkFig13Saturation BenchmarkFig15Txn BenchmarkCodecStructRoundTrip"
LIMIT=1.25

# min_metric <file> <bench> <metric>: minimum value of metric across the
# named benchmark's rows (bench.sh emits one row per -c repetition).
# Rows under "baseline_seed"/"baseline_pr*" blocks are excluded by
# requiring the 4-space indentation bench.sh uses for top-level rows.
min_metric() {
  awk -v bench="$2" -v metric="$3" '
    $0 ~ "^    \\{\"name\": \"" bench "\"" {
      pat = "\"" metric "\": "
      line = $0
      while ((i = index(line, pat)) > 0) {
        v = substr(line, i + length(pat))
        sub(/[,}].*/, "", v)
        if (best == "" || v + 0 < best + 0) best = v
        line = substr(line, i + length(pat))
      }
    }
    END { if (best == "") { exit 1 }; print best }
  ' "$1"
}

fail=0
for bench in $BENCHES; do
  for metric in "ns/op" "allocs/op"; do
    cur=$(min_metric "$CUR" "$bench" "$metric") || { echo "perfgate: $bench $metric missing from $CUR" >&2; exit 2; }
    base=$(min_metric "$BASE" "$bench" "$metric") || { echo "perfgate: $bench $metric missing from $BASE" >&2; exit 2; }
    ok=$(awk -v c="$cur" -v b="$base" -v l="$LIMIT" 'BEGIN { print (c + 0 <= b * l) ? 1 : 0 }')
    ratio=$(awk -v c="$cur" -v b="$base" 'BEGIN { printf "%.3f", c / b }')
    if [ "$ok" = 1 ]; then
      echo "perfgate: $bench $metric OK: $cur vs baseline $base (${ratio}x <= ${LIMIT}x)"
    else
      echo "perfgate: $bench $metric REGRESSED: $cur vs baseline $base (${ratio}x > ${LIMIT}x)" >&2
      fail=1
    fi
  done
done
exit $fail
